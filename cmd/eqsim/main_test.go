package main

import (
	"testing"

	"equalizer/internal/config"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]config.VFLevel{
		"low": config.VFLow, "Normal": config.VFNormal, "HIGH": config.VFHigh,
	}
	for in, want := range cases {
		got, err := parseLevel(in)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseLevel("turbo"); err == nil {
		t.Error("parseLevel accepted an unknown level")
	}
}

func TestBuildPolicy(t *testing.T) {
	cases := []struct {
		name       string
		wantNil    bool
		wantStatic bool
		policyName string
	}{
		{"baseline", true, false, ""},
		{"static", true, true, ""},
		{"dynCTA", false, false, "dynCTA"},
		{"ccws", false, false, "CCWS"},
		{"equalizer-energy", false, false, "equalizer-energy"},
		{"equalizer-perf", false, false, "equalizer-performance"},
		{"Equalizer-Performance", false, false, "equalizer-performance"},
	}
	for _, tc := range cases {
		p, static, err := buildPolicy(tc.name, 0, config.DefaultEqualizer())
		if err != nil {
			t.Errorf("buildPolicy(%q): %v", tc.name, err)
			continue
		}
		if (p == nil) != tc.wantNil {
			t.Errorf("buildPolicy(%q): nil=%v, want %v", tc.name, p == nil, tc.wantNil)
		}
		if static != tc.wantStatic {
			t.Errorf("buildPolicy(%q): static=%v, want %v", tc.name, static, tc.wantStatic)
		}
		if p != nil && p.Name() != tc.policyName {
			t.Errorf("buildPolicy(%q): name=%q, want %q", tc.name, p.Name(), tc.policyName)
		}
	}
	if _, _, err := buildPolicy("nonsense", 0, config.DefaultEqualizer()); err == nil {
		t.Error("buildPolicy accepted an unknown policy")
	}
}

func TestBuildPolicyStaticBlocks(t *testing.T) {
	p, static, err := buildPolicy("static", 3, config.DefaultEqualizer())
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || !static {
		t.Fatalf("static with blocks: policy=%v static=%v", p, static)
	}
	if p.Name() != "static-blocks" {
		t.Fatalf("name = %q", p.Name())
	}
}
