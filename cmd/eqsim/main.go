// Command eqsim runs one kernel (all its invocations) on the simulated GPU
// under a chosen policy and prints timing, energy and counter statistics.
//
// Usage:
//
//	eqsim -kernel kmn -policy equalizer-perf
//	eqsim -kernel lbm -policy static -sm high -mem low
//	eqsim -kernel bfs-2 -policy equalizer-energy -v
//
// Policies: baseline (no tuning), static (with -sm/-mem/-blocks), dynCTA,
// ccws, equalizer-energy, equalizer-perf.
//
// Results persist in the same disk cache eqbench uses (-cache-dir, default
// .eqcache): rerunning an already-simulated configuration is instant.
// -no-cache, -v, -metrics and -metrics-addr force a live simulation (they
// need per-invocation machine state the cache does not hold). -metrics-addr
// serves the machine counters over HTTP while the run is in progress;
// -json emits the result as {kernel, policy, totals} for scripting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/exp"
	"equalizer/internal/exp/runcache"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/policy"
	"equalizer/internal/power"
	"equalizer/internal/service"
	"equalizer/internal/telemetry"
)

// jsonResult is the -json output shape; Totals marshals identically to the
// payload eqsimd serves, so `eqsim -json | jq .totals` byte-compares against
// the service response.
type jsonResult struct {
	Kernel string     `json:"kernel"`
	Policy string     `json:"policy"`
	Totals exp.Totals `json:"totals"`
}

func main() {
	var (
		kernelName = flag.String("kernel", "cutcp", "kernel name from Table II (e.g. kmn, lbm, bfs-2)")
		policyName = flag.String("policy", "baseline", "baseline | static | dynCTA | ccws | equalizer-energy | equalizer-perf")
		smLevel    = flag.String("sm", "normal", "static SM VF level: low | normal | high")
		memLevel   = flag.String("mem", "normal", "static memory VF level: low | normal | high")
		blocks     = flag.Int("blocks", 0, "static per-SM block limit (0 = kernel maximum)")
		verbose    = flag.Bool("v", false, "print per-invocation results")
		list       = flag.Bool("list", false, "list all kernels and exit")
		cacheDir   = flag.String("cache-dir", ".eqcache", "persistent result-cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the persistent result cache")
		metrics    = flag.String("metrics", "", "write machine counters to this file after the run")
		set        = flag.String("set", "", "comma-separated config overrides, e.g. numsms=8,l1.sets=32,epochcycles=2048")
		metricsFmt = flag.String("metrics-format", "prom", "metrics file format: prom | json")
		metricsAdr = flag.String("metrics-addr", "", "serve machine counters live over HTTP at this address during the run (forces a live simulation)")
		asJSON     = flag.Bool("json", false, "emit the result as JSON ({kernel, policy, totals})")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		fastFwd    = flag.Bool("fastforward", true, "use the fast-path cycle engine (quiescent-cycle skip + bitset scheduling); false falls back to the legacy per-cycle loop")
		smShards   = flag.Int("sm-shards", 0, "intra-run SM worker count (0 = auto: min(GOMAXPROCS, SMs); 1 = sequential); results are byte-identical at any value")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	switch *metricsFmt {
	case "prom", "json":
	default:
		fatal(fmt.Errorf("unknown -metrics-format %q (want prom or json)", *metricsFmt))
	}
	stopProfiling, err := telemetry.StartProfiling(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Printf("%-10s %-12s %-12s %7s %5s %6s %5s\n",
			"kernel", "app", "category", "frac", "blk", "wcta", "invs")
		for _, k := range kernels.All() {
			fmt.Printf("%-10s %-12s %-12s %7.2f %5d %6d %5d\n",
				k.Name, k.App, k.Category, k.Fraction, k.BlocksPerSM, k.Wcta, k.Invocations)
		}
		return
	}

	k, err := kernels.ByName(*kernelName)
	if err != nil {
		fatal(err)
	}

	gpuCfg, eqCfg := config.Default(), config.DefaultEqualizer()
	if err := config.ApplyOverrides(&gpuCfg, &eqCfg, *set); err != nil {
		fatal(err)
	}
	pol, static, err := buildPolicy(*policyName, *blocks, eqCfg)
	if err != nil {
		fatal(err)
	}
	sl, err := parseLevel(*smLevel)
	if err != nil {
		fatal(err)
	}
	ml, err := parseLevel(*memLevel)
	if err != nil {
		fatal(err)
	}

	var tot exp.Totals
	// -v, -metrics and -metrics-addr need a live machine (per-invocation
	// results, counter state); everything else routes through the exp harness
	// so results are served from and stored to the shared disk cache.
	// Config overrides also bypass the cache: its keys assume the default
	// machine model. -fastforward=false does too: the escape hatch exists to
	// re-run suspect results on the legacy engine, never to serve them from a
	// cache populated by the fast path.
	if !*verbose && *metrics == "" && *metricsAdr == "" && !*noCache && *set == "" && *fastFwd {
		// Sharding is safe to serve from the shared cache: results are
		// byte-identical at any shard count, so the key needn't carry it.
		cache, err := runcache.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		h := exp.New(exp.Options{Cache: cache, Parallelism: 1, SMShards: *smShards})
		tot, err = h.Run(k, setupFromFlags(*policyName, static, sl, ml, *blocks))
		if err != nil {
			fatal(err)
		}
		if st := h.SchedulerStats(); st.CacheHits > 0 {
			fmt.Fprintf(os.Stderr, "eqsim: result served from cache %s\n", cache.Dir())
		}
	} else {
		m, err := gpu.New(gpuCfg, power.Default(), pol)
		if err != nil {
			fatal(err)
		}
		m.SetFastForward(*fastFwd)
		shards := *smShards
		if shards <= 0 {
			shards = gpu.AutoShards(1, gpuCfg.NumSMs)
		}
		m.SetSMShards(shards)
		if static {
			m.SetLevelsImmediate(sl, ml)
		}
		// The live metrics server scrapes the machine's counters between
		// invocations; its lock keeps scrapes from racing a running kernel.
		var ms *service.MetricsServer
		if *metricsAdr != "" {
			reg := telemetry.NewRegistry()
			ms, err = service.StartMetricsServer(*metricsAdr, reg, func() { m.Collect(reg) })
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "eqsim: serving live metrics on http://%s/metrics\n", ms.Addr())
		}
		var l1Weighted, dramWeighted float64
		for inv := 0; inv < k.Invocations; inv++ {
			if ms != nil {
				ms.Lock()
			}
			res, err := m.RunKernel(k, inv)
			if ms != nil {
				ms.Unlock()
			}
			if err != nil {
				fatal(err)
			}
			tot.TimePS += res.TimePS
			tot.EnergyJ += res.EnergyJ()
			tot.SMCycles += res.SMCycles
			l1Weighted += res.L1HitRate * float64(res.SMCycles)
			dramWeighted += res.DRAMUtil * float64(res.SMCycles)
			for i := 0; i < 3; i++ {
				tot.Residency.SM[i] += res.Residency.SM[i]
				tot.Residency.Mem[i] += res.Residency.Mem[i]
			}
			tot.PerInvocationPS = append(tot.PerInvocationPS, res.TimePS)
			if *verbose {
				fmt.Printf("inv %2d: %9d cycles  %8.3f ms  %8.4f J  IPC %.3f  L1 %.2f  DRAM %.2f\n",
					inv+1, res.SMCycles, float64(res.TimePS)/1e9, res.EnergyJ(),
					res.IPC, res.L1HitRate, res.DRAMUtil)
			}
		}
		if tot.SMCycles > 0 {
			tot.L1Hit = l1Weighted / float64(tot.SMCycles)
			tot.DRAMUtil = dramWeighted / float64(tot.SMCycles)
		}
		if *metrics != "" {
			if err := writeMetrics(m, *metrics, *metricsFmt); err != nil {
				fatal(err)
			}
		}
		if ms != nil {
			if err := ms.Close(); err != nil {
				fatal(err)
			}
		}
	}

	name := "baseline"
	if pol != nil {
		name = pol.Name()
	} else if static {
		name = fmt.Sprintf("static(sm=%s,mem=%s,blocks=%d)", *smLevel, *memLevel, *blocks)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonResult{Kernel: k.Name, Policy: name, Totals: tot}); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("kernel %-8s policy %-24s time %10.3f ms  energy %9.4f J  mean power %6.1f W\n",
			k.Name, name, float64(tot.TimePS)/1e9, tot.EnergyJ, tot.EnergyJ/(float64(tot.TimePS)*1e-12))
	}

	if err := stopProfiling(); err != nil {
		fatal(err)
	}
}

// setupFromFlags maps the command-line policy selection onto the harness's
// Setup vocabulary, which keys the shared result cache.
func setupFromFlags(policyName string, static bool, sl, ml config.VFLevel, blocks int) exp.Setup {
	if static {
		if blocks > 0 {
			return exp.Setup{Policy: "blocks", SM: sl, Mem: ml, Blocks: blocks}
		}
		return exp.StaticVF(sl, ml)
	}
	switch strings.ToLower(policyName) {
	case "dyncta":
		return exp.Setup{Policy: "dynCTA", SM: config.VFNormal, Mem: config.VFNormal}
	case "ccws":
		return exp.Setup{Policy: "ccws", SM: config.VFNormal, Mem: config.VFNormal}
	case "equalizer-energy":
		return exp.EqualizerSetup(core.EnergyMode)
	case "equalizer-perf", "equalizer-performance":
		return exp.EqualizerSetup(core.PerformanceMode)
	default:
		return exp.Baseline()
	}
}

// writeMetrics snapshots the machine's counters into a registry and writes
// it in Prometheus text or JSON form.
func writeMetrics(m *gpu.Machine, path, format string) error {
	reg := telemetry.NewRegistry()
	m.Collect(reg)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if format == "json" {
		return reg.WriteJSON(f)
	}
	return reg.WritePrometheus(f)
}

func buildPolicy(name string, blocks int, eqCfg config.Equalizer) (gpu.Policy, bool, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return nil, false, nil
	case "static":
		if blocks > 0 {
			return policy.NewStaticBlocks(blocks), true, nil
		}
		return nil, true, nil
	case "dyncta":
		return policy.NewDynCTA(), false, nil
	case "ccws":
		return policy.NewCCWS(), false, nil
	case "equalizer-energy":
		return core.NewWithConfig(core.EnergyMode, eqCfg), false, nil
	case "equalizer-perf", "equalizer-performance":
		return core.NewWithConfig(core.PerformanceMode, eqCfg), false, nil
	default:
		return nil, false, fmt.Errorf("unknown policy %q", name)
	}
}

func parseLevel(s string) (config.VFLevel, error) {
	switch strings.ToLower(s) {
	case "low":
		return config.VFLow, nil
	case "normal":
		return config.VFNormal, nil
	case "high":
		return config.VFHigh, nil
	default:
		return 0, fmt.Errorf("unknown VF level %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqsim:", err)
	os.Exit(1)
}
