// Command eqviz renders the paper's evaluation figures as SVG images.
//
// Usage:
//
//	eqviz -out figures -scale 0.5        # render all supported figures
//	eqviz -out figures -exp fig7         # one figure
//
// Supported: fig2b fig4 fig5 fig7 fig8 fig10 fig11b. Each run simulates the
// required configurations on a worker pool (-parallel) backed by the shared
// disk cache (-cache-dir / -no-cache); see cmd/eqbench for text output of
// every experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"equalizer/internal/exp"
	"equalizer/internal/exp/runcache"
	"equalizer/internal/svg"
	"equalizer/internal/telemetry"
)

func main() {
	var (
		outDir     = flag.String("out", "figures", "output directory for .svg files")
		expName    = flag.String("exp", "all", "figure id or 'all'")
		scale      = flag.Float64("scale", 1.0, "grid-size scale factor (0,1]")
		parallel   = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir   = flag.String("cache-dir", ".eqcache", "persistent result-cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the persistent result cache")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	stopProfiling, err := telemetry.StartProfiling(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProfiling(); err != nil {
			fatal(err)
		}
	}()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	opts := exp.Options{GridScale: *scale, Parallelism: *parallel}
	if !*noCache {
		cache, err := runcache.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		opts.Cache = cache
	}
	h := exp.New(opts)

	figures := []string{"fig2b", "fig4", "fig5", "fig7", "fig8", "fig10", "fig11b"}
	if *expName != "all" {
		figures = strings.Split(*expName, ",")
	}
	for _, name := range figures {
		doc, err := render(h, strings.TrimSpace(name))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		path := filepath.Join(*outDir, name+".svg")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

func render(h *exp.Harness, name string) (string, error) {
	switch name {
	case "fig2b":
		pts, err := h.Figure2b()
		if err != nil {
			return "", err
		}
		waiting := svg.Series{Name: "waiting"}
		xmem := svg.Series{Name: "excess mem"}
		xalu := svg.Series{Name: "excess compute"}
		for _, p := range pts {
			waiting.Values = append(waiting.Values, p.Waiting)
			xmem.Values = append(xmem.Values, p.XMEM)
			xalu.Values = append(xalu.Values, p.XALU)
		}
		return svg.LineChart("Figure 2b: mri_g-1 warp states over execution", "epoch",
			[]svg.Series{waiting, xmem, xalu}, 900, 420), nil

	case "fig4":
		rows, err := h.Figure4()
		if err != nil {
			return "", err
		}
		var labels []string
		waiting := svg.Series{Name: "waiting"}
		xalu := svg.Series{Name: "excess ALU"}
		xmem := svg.Series{Name: "excess mem"}
		for _, r := range rows {
			labels = append(labels, r.Kernel)
			waiting.Values = append(waiting.Values, r.Waiting)
			xalu.Values = append(xalu.Values, r.XALU)
			xmem.Values = append(xmem.Values, r.XMEM)
		}
		return svg.BarChart("Figure 4: state of warps (fraction of observations)",
			labels, []svg.Series{waiting, xalu, xmem}, 1200, 460), nil

	case "fig5":
		rows, err := h.Figure5()
		if err != nil {
			return "", err
		}
		var series []svg.Series
		for _, r := range rows {
			series = append(series, svg.Series{Name: r.Kernel, Values: r.Speedup})
		}
		return svg.LineChart("Figure 5: memory-kernel performance vs thread blocks",
			"concurrent thread blocks", series, 700, 420), nil

	case "fig7":
		rows, err := h.Figure7()
		if err != nil {
			return "", err
		}
		var labels []string
		eq := svg.Series{Name: "equalizer"}
		smb := svg.Series{Name: "SM boost"}
		memb := svg.Series{Name: "mem boost"}
		for _, r := range rows {
			labels = append(labels, r.Kernel)
			eq.Values = append(eq.Values, r.Equalizer)
			smb.Values = append(smb.Values, r.SMBoost)
			memb.Values = append(memb.Values, r.MemBoost)
		}
		return svg.BarChart("Figure 7: performance mode speedup",
			labels, []svg.Series{eq, smb, memb}, 1200, 460), nil

	case "fig8":
		rows, err := h.Figure8()
		if err != nil {
			return "", err
		}
		var labels []string
		eq := svg.Series{Name: "equalizer"}
		sml := svg.Series{Name: "SM low"}
		meml := svg.Series{Name: "mem low"}
		for _, r := range rows {
			labels = append(labels, r.Kernel)
			eq.Values = append(eq.Values, r.Equalizer)
			sml.Values = append(sml.Values, r.SMLow)
			meml.Values = append(meml.Values, r.MemLow)
		}
		return svg.BarChart("Figure 8: energy mode performance",
			labels, []svg.Series{eq, sml, meml}, 1200, 460), nil

	case "fig10":
		rows, err := h.Figure10()
		if err != nil {
			return "", err
		}
		var labels []string
		dyn := svg.Series{Name: "dynCTA"}
		ccws := svg.Series{Name: "CCWS"}
		eq := svg.Series{Name: "equalizer"}
		for _, r := range rows {
			labels = append(labels, r.Kernel)
			dyn.Values = append(dyn.Values, r.DynCTA)
			ccws.Values = append(ccws.Values, r.CCWS)
			eq.Values = append(eq.Values, r.EqualizerPf)
		}
		return svg.BarChart("Figure 10: Equalizer vs DynCTA vs CCWS",
			labels, []svg.Series{dyn, ccws, eq}, 800, 420), nil

	case "fig11b":
		d, err := h.Figure11b()
		if err != nil {
			return "", err
		}
		eqWarps := svg.Series{Name: "equalizer active warps"}
		eqWait := svg.Series{Name: "equalizer waiting"}
		dynWarps := svg.Series{Name: "dynCTA active warps"}
		for _, p := range d.Equalizer {
			eqWarps.Values = append(eqWarps.Values, p.Counters.Active)
			eqWait.Values = append(eqWait.Values, p.Counters.Waiting)
		}
		for _, p := range d.DynCTA {
			dynWarps.Values = append(dynWarps.Values, p.Active)
		}
		return svg.LineChart("Figure 11b: spmv concurrency adaptation", "epoch",
			[]svg.Series{eqWarps, eqWait, dynWarps}, 900, 420), nil

	default:
		return "", fmt.Errorf("unknown figure %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eqviz:", err)
	os.Exit(1)
}
