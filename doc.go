// Package equalizer is a from-scratch Go reproduction of "Equalizer: Dynamic
// Tuning of GPU Resources for Efficient Execution" (Sethia & Mahlke, MICRO
// 2014).
//
// The module contains a cycle-level Fermi-style GPU simulator (SMs, warp
// scheduler, L1/L2 caches, interconnect, GDDR5-style memory controller, two
// DVFS clock domains), an activity-based energy model, the 27-kernel
// Rodinia/Parboil workload registry of the paper modelled as synthetic warp
// profiles, the Equalizer runtime itself, the DynCTA and CCWS baselines, and
// an experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// Entry points:
//
//	cmd/eqsim     run one kernel under one policy
//	cmd/eqbench   regenerate the paper's tables and figures
//	cmd/eqtrace   dump Equalizer's per-epoch counter traces
//	examples/     four runnable walkthroughs of the public API
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper's numbers.
package equalizer
