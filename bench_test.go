package equalizer_test

import (
	"fmt"
	"testing"

	"equalizer/internal/config"
	"equalizer/internal/core"
	"equalizer/internal/exp"
	"equalizer/internal/gpu"
	"equalizer/internal/kernels"
	"equalizer/internal/power"
)

// benchScale shrinks the grids so one benchmark iteration stays in the
// hundreds of milliseconds; run cmd/eqbench for full-scale numbers.
const benchScale = 0.25

// harness builds a cold harness at the default parallelism (GOMAXPROCS) with
// no disk cache, so every iteration measures real simulation work.
func harness() *exp.Harness { return exp.New(exp.Options{GridScale: benchScale}) }

// BenchmarkTable2Registry regenerates Table II (the kernel registry).
func BenchmarkTable2Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if len(h.Table2()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1 regenerates the static VF / block-count sensitivity study.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2a regenerates the bfs-2 inter-invocation study.
func BenchmarkFigure2a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure2a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2b regenerates the mri_g-1 warp-state time series.
func BenchmarkFigure2b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure2b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4 regenerates the warp-state distribution.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 regenerates the memory-kernel block sweep.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure7 regenerates the performance-mode evaluation.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8 regenerates the energy-mode evaluation.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9 regenerates the VF-residency distribution.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure9(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 regenerates the DynCTA/CCWS comparison.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure10(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11a regenerates the bfs-2 adaptivity study.
func BenchmarkFigure11a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure11a(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11b regenerates the spmv adaptivity traces.
func BenchmarkFigure11b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Figure11b(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummary regenerates the headline numbers (Figures 7 + 8) on the
// worker pool at the default parallelism.
func BenchmarkSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := harness()
		if _, err := h.Summarize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSummarySequential is the one-worker reference for BenchmarkSummary:
// the ratio of the two is the worker pool's wall-clock win on this machine.
func BenchmarkSummarySequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := exp.New(exp.Options{GridScale: benchScale, Parallelism: 1})
		if _, err := h.Summarize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCyclesPerSecond measures the raw simulator throughput:
// SM-domain cycles simulated per wall second on a compute kernel.
func BenchmarkSimulatorCyclesPerSecond(b *testing.B) {
	k, err := kernels.ByName("cutcp")
	if err != nil {
		b.Fatal(err)
	}
	k.GridBlocks = 30
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		m := gpu.MustNew(config.Default(), power.Default(), nil)
		res, err := m.RunKernel(k, 0)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.SMCycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// benchmarkEngine runs one kernel to completion on the selected cycle engine
// and reports simulated SM cycles per wall second. The fast/legacy pairs
// below are the cycle-engine smoke benchmarks CI tracks (BENCH_engine.json
// holds the full-scale numbers from cmd/eqbench -exp engine).
func benchmarkEngine(b *testing.B, kernel string, fastForward bool, shards int) {
	k, err := kernels.ByName(kernel)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		m := gpu.MustNew(config.Default(), power.Default(), core.New(core.EnergyMode))
		m.SetFastForward(fastForward)
		m.SetSMShards(shards)
		for inv := 0; inv < k.Invocations; inv++ {
			res, err := m.RunKernel(k, inv)
			if err != nil {
				b.Fatal(err)
			}
			cycles += res.SMCycles
		}
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkEngine measures the cycle engines on one compute-bound and one
// memory-bound kernel: cutcp saturates the ALU pipes (the bitset issue path
// carries the fast engine's win), lbm stalls on DRAM (the quiescent-cycle
// bulk advance carries it). The shard axis steps the SMs with 1 (sequential)
// or more workers; output is byte-identical across the axis, so the delta is
// pure wall-clock.
func BenchmarkEngine(b *testing.B) {
	shardAxis := []int{1, 2}
	if n := gpu.AutoShards(1, config.Default().NumSMs); n > 2 {
		shardAxis = append(shardAxis, n)
	}
	for _, kernel := range []string{"cutcp", "lbm"} {
		for _, engine := range []struct {
			name string
			fast bool
		}{{"fast", true}, {"legacy", false}} {
			for _, shards := range shardAxis {
				b.Run(fmt.Sprintf("%s/%s/shards=%d", kernel, engine.name, shards), func(b *testing.B) {
					benchmarkEngine(b, kernel, engine.fast, shards)
				})
			}
		}
	}
}

// BenchmarkEqualizerOverhead measures the wall-time cost of the Equalizer
// policy hooks relative to the bare simulator.
func BenchmarkEqualizerOverhead(b *testing.B) {
	k, err := kernels.ByName("cutcp")
	if err != nil {
		b.Fatal(err)
	}
	k.GridBlocks = 30
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := gpu.MustNew(config.Default(), power.Default(), core.New(core.PerformanceMode))
		if _, err := m.RunKernel(k, 0); err != nil {
			b.Fatal(err)
		}
	}
}
